package sim

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// SweepSink consumes sweep results as points complete, in long format:
// every emitted row/object is one run of one point, carrying the
// point's axis coordinates next to the usual result columns.
// Implementations are not safe for concurrent Emit; feed them from a
// single drain loop.
type SweepSink interface {
	// Emit records one completed sweep point (all of its runs).
	Emit(SweepResult) error
	// Close flushes buffered output. The sink is unusable afterwards.
	Close() error
}

// EmitAllSweep feeds a sweep result slice through a sink and closes it.
func EmitAllSweep(s SweepSink, rs []SweepResult) error {
	for _, r := range rs {
		if err := s.Emit(r); err != nil {
			return err
		}
	}
	return s.Close()
}

// sweepRecord is the long-format NDJSON projection of one run of one
// sweep point: the point coordinates, then the shared record fields.
type sweepRecord struct {
	Point int               `json:"point"`
	Axes  map[string]string `json:"axes"`
	record
}

// SweepJSONSink writes one NDJSON object per run per point.
type SweepJSONSink struct {
	enc *json.Encoder
}

// NewSweepJSONSink creates a sink writing long-format NDJSON records
// to w.
func NewSweepJSONSink(w io.Writer) *SweepJSONSink {
	return &SweepJSONSink{enc: json.NewEncoder(w)}
}

// Emit writes one line per run of the point.
func (s *SweepJSONSink) Emit(sr SweepResult) error {
	axes := make(map[string]string, len(sr.Point.Values))
	for _, av := range sr.Point.Values {
		axes[av.Axis] = av.Value
	}
	for _, r := range sr.Results {
		if err := s.enc.Encode(sweepRecord{Point: sr.Point.Index, Axes: axes, record: toRecord(r)}); err != nil {
			return err
		}
	}
	return nil
}

// Close is a no-op: every Emit already flushed full lines.
func (s *SweepJSONSink) Close() error { return nil }

// SweepCSVSink writes long-format CSV: a "point" column, one
// "axis:<name>" column per sweep axis, then the regular result
// columns. Axis names are fixed at construction (take them from
// Sweep.AxisNames) so the header is stable however points stream in.
type SweepCSVSink struct {
	w      *csv.Writer
	axes   []string
	wroteH bool
}

// NewSweepCSVSink creates a sink writing long-format CSV to w with one
// axis column per name, in the given order.
func NewSweepCSVSink(w io.Writer, axes []string) *SweepCSVSink {
	return &SweepCSVSink{w: csv.NewWriter(w), axes: append([]string(nil), axes...)}
}

// Emit writes one CSV row per run of the point (and the header before
// the first row).
func (s *SweepCSVSink) Emit(sr SweepResult) error {
	if !s.wroteH {
		header := make([]string, 0, 1+len(s.axes)+len(csvHeader))
		header = append(header, "point")
		for _, name := range s.axes {
			header = append(header, "axis:"+name)
		}
		header = append(header, csvHeader...)
		if err := s.w.Write(header); err != nil {
			return err
		}
		s.wroteH = true
	}
	prefix := make([]string, 0, 1+len(s.axes))
	prefix = append(prefix, strconv.Itoa(sr.Point.Index))
	for _, name := range s.axes {
		v, _ := sr.Point.Value(name) // a missing axis renders empty, not misaligned
		prefix = append(prefix, v)
	}
	for _, r := range sr.Results {
		cells, err := recordRow(toRecord(r))
		if err != nil {
			return err
		}
		if err := s.w.Write(append(append([]string(nil), prefix...), cells...)); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the CSV writer.
func (s *SweepCSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}
