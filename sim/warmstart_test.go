package sim_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/sim"
)

// warmTestSweep runs the canonical warm-start sweep — two benchmarks ×
// two schemes over pred.bytes (replay-visible) × mispredict.penalty
// (carryover) — and returns its sorted results.
func warmTestSweep(t *testing.T, traceDir string, warm bool, opts ...sim.Option) []sim.SweepResult {
	t.Helper()
	base := []sim.Option{
		sim.WithSuite("gzip", "vpr"),
		sim.WithSchemes("conventional", "predpred"),
		sim.WithCommits(50000),
		sim.WithProfileSteps(50000),
		sim.WithMode(sim.ModeTrace),
		sim.WithTraceDir(traceDir),
		sim.WithParallelism(2),
	}
	exp, err := sim.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.NewSweep(exp,
		sim.WithAxis("pred.bytes", 75776, 151552),
		sim.WithAxis("mispredict.penalty", 5, 10, 15, 20),
		sim.WithWarmStart(warm),
	)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// sweepCSV renders sweep results through the long-format CSV sink.
func sweepCSV(t *testing.T, rs []sim.SweepResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := sim.NewSweepCSVSink(&buf, []string{"pred.bytes", "mispredict.penalty"})
	if err := sim.EmitAllSweep(s, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmSweepByteIdenticalToCold is the warm-start acceptance check:
// a warm-started sweep must emit byte-identical long-format rows to a
// cold sweep of the same grid, while actually reusing replay
// statistics across the carryover axis (observed through the
// process-wide warm-start counters).
func TestWarmSweepByteIdenticalToCold(t *testing.T) {
	dir := t.TempDir()
	before := sim.ProcessMetrics()
	cold := warmTestSweep(t, dir, false)
	mid := sim.ProcessMetrics()
	if d := mid.CounterValue("sweep.warmstart.hits") - before.CounterValue("sweep.warmstart.hits"); d != 0 {
		t.Fatalf("cold sweep must not touch the warm-start memo, got %d hits", d)
	}
	warm := warmTestSweep(t, dir, true)
	after := sim.ProcessMetrics()

	// 8 points, 2 distinct non-carryover coordinates, 2 workers with one
	// contiguous chunk each: the first point of each coordinate replays
	// (2 benches × 2 schemes = 4 misses per worker), the other 3 points
	// of the chunk reuse it (12 hits per worker).
	hits := after.CounterValue("sweep.warmstart.hits") - mid.CounterValue("sweep.warmstart.hits")
	misses := after.CounterValue("sweep.warmstart.misses") - mid.CounterValue("sweep.warmstart.misses")
	if hits != 24 || misses != 8 {
		t.Errorf("warm sweep should reuse 24 cells and replay 8, got %d hits / %d misses", hits, misses)
	}

	if len(cold) != 8 || len(warm) != 8 {
		t.Fatalf("want 8 points each, got cold=%d warm=%d", len(cold), len(warm))
	}
	for i := range cold {
		for _, r := range cold[i].Results {
			if r.Err != nil {
				t.Fatalf("cold point %d %s/%s: %v", i, r.Bench, r.Scheme, r.Err)
			}
		}
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm-started sweep results differ from cold sweep")
	}
	if c, w := sweepCSV(t, cold), sweepCSV(t, warm); !bytes.Equal(c, w) {
		t.Fatalf("warm sweep CSV rows not byte-identical to cold:\ncold:\n%swarm:\n%s", c, w)
	}

	// The carryover axis really is timing-only: replay stats must be
	// identical across mispredict.penalty at fixed pred.bytes ...
	for i := 1; i < 4; i++ {
		if !reflect.DeepEqual(cold[0].Results, cold[i].Results) {
			t.Errorf("points 0 and %d differ only in mispredict.penalty but have different replay stats", i)
		}
	}
	// ... while the replay-visible axis still changes something.
	if reflect.DeepEqual(cold[0].Results, cold[4].Results) {
		t.Error("sweeping pred.bytes 75776→151552 changed nothing; axis not applied?")
	}
}

// TestExperimentFrontendCacheRoundTrip pins the frontend-artifact tier
// at the experiment level: a cached run is bit-identical to a live
// frontend run, the first cached run builds and stores one artifact per
// benchmark, and a second run over the same directory serves them from
// disk — all observed through the process-wide counters that
// sim.ProcessMetrics snapshots.
func TestExperimentFrontendCacheRoundTrip(t *testing.T) {
	traceDir, feDir := t.TempDir(), t.TempDir()
	run := func(opts ...sim.Option) []sim.Result {
		t.Helper()
		base := []sim.Option{
			sim.WithSuite("gzip", "vpr"),
			sim.WithSchemes("conventional", "predpred"),
			sim.WithCommits(50000),
			sim.WithProfileSteps(50000),
			sim.WithMode(sim.ModeTrace),
			sim.WithTraceDir(traceDir),
		}
		exp, err := sim.New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("%s/%s: %v", r.Bench, r.Scheme, r.Err)
			}
		}
		return rs
	}

	plain := run()
	before := sim.ProcessMetrics()
	built := run(sim.WithFrontendCache(feDir))
	mid := sim.ProcessMetrics()
	hit := run(sim.WithFrontendCache(feDir))
	after := sim.ProcessMetrics()

	if !reflect.DeepEqual(plain, built) {
		t.Error("artifact-fed run (build path) differs from live-frontend run")
	}
	if !reflect.DeepEqual(plain, hit) {
		t.Error("artifact-fed run (hit path) differs from live-frontend run")
	}

	d := func(a, b sim.MetricsSnapshot, name string) uint64 {
		return b.CounterValue(name) - a.CounterValue(name)
	}
	if got := d(before, mid, "frontend.builds"); got != 2 {
		t.Errorf("first cached run should build one artifact per benchmark, got %d", got)
	}
	if got := d(before, mid, "frontend.cache.stores"); got != 2 {
		t.Errorf("first cached run should store 2 artifacts, got %d", got)
	}
	if got := d(before, mid, "frontend.cache.misses"); got != 2 {
		t.Errorf("first cached run should miss 2 lookups, got %d", got)
	}
	if got := d(mid, after, "frontend.cache.hits"); got != 2 {
		t.Errorf("second cached run should hit 2 lookups, got %d", got)
	}
	if got := d(mid, after, "frontend.builds"); got != 0 {
		t.Errorf("second cached run should build nothing, got %d", got)
	}
	if got := d(mid, after, "frontend.cache.bytes.read"); got == 0 {
		t.Error("second cached run should read artifact bytes from disk")
	}
}

// TestWarmSweepManifests pins warm-start and frontend-artifact
// provenance in run manifests: warmed cells are flagged WarmStart with
// no timing phases, replayed cells carry the frontend-artifact outcome,
// and the artifact tier's process counters move.
func TestWarmSweepManifests(t *testing.T) {
	o := sim.NewObserver()
	before := sim.ProcessMetrics()
	rs := warmTestSweep(t, t.TempDir(), true,
		sim.WithObserver(o),
		sim.WithFrontendCache(t.TempDir()),
		sim.WithParallelism(1),
	)
	delta := sim.ProcessMetrics()
	if len(rs) != 8 {
		t.Fatalf("want 8 points, got %d", len(rs))
	}
	if d := delta.CounterValue("frontend.builds") - before.CounterValue("frontend.builds"); d != 2 {
		t.Errorf("fresh frontend cache should build one artifact per benchmark, got %d", d)
	}

	ms := o.Manifests()
	if len(ms) != 32 {
		t.Fatalf("want 32 cell manifests, got %d", len(ms))
	}
	warmed, replayed := 0, 0
	for _, m := range ms {
		if m.WarmStart {
			warmed++
			if len(m.PhasesNS) != 0 {
				t.Errorf("warmed cell %s/%s point %d has timing phases %v", m.Bench, m.Scheme, m.Point, m.PhasesNS)
			}
			continue
		}
		replayed++
		if m.FrontendCache != "build" {
			t.Errorf("replayed cell %s/%s should carry artifact provenance %q, got %q", m.Bench, m.Scheme, "build", m.FrontendCache)
		}
	}
	// One worker, 8 points, 2 non-carryover coordinates: 2×4 cells
	// replay, the rest reuse.
	if warmed != 24 || replayed != 8 {
		t.Errorf("want 24 warmed / 8 replayed cells, got %d / %d", warmed, replayed)
	}
}
